open Mcml_logic

type t = {
  w1 : float array array; (* hidden x input *)
  b1 : float array;
  w2 : float array; (* hidden *)
  b2 : float;
}

type params = { hidden : int; epochs : int; batch : int; learning_rate : float }

let default_params = { hidden = 64; epochs = 40; batch = 32; learning_rate = 5e-3 }

let sigmoid z = 1.0 /. (1.0 +. exp (-.z))

(* Minimal Adam state for a flat parameter vector view. *)
type adam = { mutable t : int; m : float array; v : float array }

let adam_make n = { t = 0; m = Array.make n 0.0; v = Array.make n 0.0 }

let adam_step st ~lr (theta : float array) (grad : float array) =
  let beta1 = 0.9 and beta2 = 0.999 and eps = 1e-8 in
  st.t <- st.t + 1;
  let t = float_of_int st.t in
  let bc1 = 1.0 -. (beta1 ** t) and bc2 = 1.0 -. (beta2 ** t) in
  Array.iteri
    (fun i g ->
      st.m.(i) <- (beta1 *. st.m.(i)) +. ((1.0 -. beta1) *. g);
      st.v.(i) <- (beta2 *. st.v.(i)) +. ((1.0 -. beta2) *. g *. g);
      let mhat = st.m.(i) /. bc1 and vhat = st.v.(i) /. bc2 in
      theta.(i) <- theta.(i) -. (lr *. mhat /. (sqrt vhat +. eps)))
    grad

let train ?(params = default_params) ~rng (ds : Dataset.t) =
  let n = Dataset.size ds in
  if n = 0 then invalid_arg "Mlp.train: empty dataset";
  let k = ds.Dataset.nfeatures and h = params.hidden in
  let gauss () =
    (* Box-Muller *)
    let u1 = Float.max 1e-12 (Splitmix.float rng) and u2 = Splitmix.float rng in
    sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
  in
  let scale1 = sqrt (2.0 /. float_of_int k) in
  let w1 = Array.init h (fun _ -> Array.init k (fun _ -> gauss () *. scale1)) in
  let b1 = Array.make h 0.0 in
  let w2 = Array.init h (fun _ -> gauss () *. sqrt (2.0 /. float_of_int h)) in
  let b2 = ref 0.0 in
  (* flatten all parameters for Adam: w1 (h*k) ++ b1 (h) ++ w2 (h) ++ b2 *)
  let nparams = (h * k) + h + h + 1 in
  let grads = Array.make nparams 0.0 in
  let theta = Array.make nparams 0.0 in
  let pack () =
    for i = 0 to h - 1 do
      Array.blit w1.(i) 0 theta (i * k) k
    done;
    Array.blit b1 0 theta (h * k) h;
    Array.blit w2 0 theta ((h * k) + h) h;
    theta.((h * k) + h + h) <- !b2
  in
  let unpack () =
    for i = 0 to h - 1 do
      Array.blit theta (i * k) w1.(i) 0 k
    done;
    Array.blit theta (h * k) b1 0 h;
    Array.blit theta ((h * k) + h) w2 0 h;
    b2 := theta.((h * k) + h + h)
  in
  let st = adam_make nparams in
  let hidden_pre = Array.make h 0.0 in
  let hidden_act = Array.make h 0.0 in
  let order = Array.init n (fun i -> i) in
  for _epoch = 1 to params.epochs do
    (* reshuffle *)
    for i = n - 1 downto 1 do
      let j = Splitmix.int rng (i + 1) in
      let tmp = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- tmp
    done;
    let idx = ref 0 in
    while !idx < n do
      let batch_end = min n (!idx + params.batch) in
      Array.fill grads 0 nparams 0.0;
      let bsize = float_of_int (batch_end - !idx) in
      for s = !idx to batch_end - 1 do
        let sample = ds.Dataset.samples.(order.(s)) in
        let x = sample.Dataset.features in
        let y = if sample.Dataset.label then 1.0 else 0.0 in
        (* forward *)
        for i = 0 to h - 1 do
          let acc = ref b1.(i) in
          let row = w1.(i) in
          for f = 0 to k - 1 do
            if x.(f) then acc := !acc +. row.(f)
          done;
          hidden_pre.(i) <- !acc;
          hidden_act.(i) <- Float.max 0.0 !acc
        done;
        let out = ref !b2 in
        for i = 0 to h - 1 do
          out := !out +. (w2.(i) *. hidden_act.(i))
        done;
        let p = sigmoid !out in
        (* backward: dL/dout = p - y (logistic loss) *)
        let dout = (p -. y) /. bsize in
        grads.((h * k) + h + h) <- grads.((h * k) + h + h) +. dout;
        for i = 0 to h - 1 do
          grads.((h * k) + h + i) <- grads.((h * k) + h + i) +. (dout *. hidden_act.(i));
          if hidden_pre.(i) > 0.0 then begin
            let dh = dout *. w2.(i) in
            grads.((h * k) + i) <- grads.((h * k) + i) +. dh;
            let base = i * k in
            for f = 0 to k - 1 do
              if x.(f) then grads.(base + f) <- grads.(base + f) +. dh
            done
          end
        done
      done;
      pack ();
      adam_step st ~lr:params.learning_rate theta grads;
      unpack ();
      idx := batch_end
    done
  done;
  { w1; b1; w2; b2 = !b2 }

let probability t features =
  let h = Array.length t.w1 in
  let acc_out = ref t.b2 in
  for i = 0 to h - 1 do
    let acc = ref t.b1.(i) in
    let row = t.w1.(i) in
    Array.iteri (fun f v -> if v then acc := !acc +. row.(f)) features;
    let a = Float.max 0.0 !acc in
    acc_out := !acc_out +. (t.w2.(i) *. a)
  done;
  sigmoid !acc_out

let predict t features = probability t features > 0.5
