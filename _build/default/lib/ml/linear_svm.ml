open Mcml_logic

type t = { w : float array; b : float }
type params = { lambda : float; epochs : int }

let default_params = { lambda = 1e-4; epochs = 30 }

let train ?(params = default_params) ~rng (ds : Dataset.t) =
  let n = Dataset.size ds in
  if n = 0 then invalid_arg "Linear_svm.train: empty dataset";
  let k = ds.Dataset.nfeatures in
  let w = Array.make k 0.0 in
  let b = ref 0.0 in
  let t = ref 0 in
  let dot features =
    let acc = ref !b in
    for f = 0 to k - 1 do
      if features.(f) then acc := !acc +. w.(f)
    done;
    !acc
  in
  for _epoch = 1 to params.epochs do
    for _step = 1 to n do
      incr t;
      let i = Splitmix.int rng n in
      let s = ds.Dataset.samples.(i) in
      let y = if s.Dataset.label then 1.0 else -1.0 in
      let eta = 1.0 /. (params.lambda *. float_of_int !t) in
      let margin = y *. dot s.Dataset.features in
      (* w <- (1 - eta*lambda) w  [+ eta*y*x  if margin < 1] *)
      let shrink = 1.0 -. (eta *. params.lambda) in
      for f = 0 to k - 1 do
        w.(f) <- w.(f) *. shrink
      done;
      if margin < 1.0 then begin
        for f = 0 to k - 1 do
          if s.Dataset.features.(f) then w.(f) <- w.(f) +. (eta *. y)
        done;
        b := !b +. (eta *. y)
      end
    done
  done;
  { w; b = !b }

let decision_value t features =
  let acc = ref t.b in
  Array.iteri (fun f v -> if features.(f) then acc := !acc +. v) t.w;
  !acc

let predict t features = decision_value t features > 0.0
