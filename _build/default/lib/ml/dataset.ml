open Mcml_logic

type sample = { features : bool array; label : bool }
type t = { nfeatures : int; samples : sample array }

let make ~nfeatures samples =
  List.iter
    (fun s ->
      if Array.length s.features <> nfeatures then
        invalid_arg
          (Printf.sprintf "Dataset.make: sample has %d features, expected %d"
             (Array.length s.features) nfeatures))
    samples;
  { nfeatures; samples = Array.of_list samples }

let of_arrays ~nfeatures pairs =
  make ~nfeatures (List.map (fun (features, label) -> { features; label }) pairs)

let size t = Array.length t.samples

let num_positive t =
  Array.fold_left (fun acc s -> if s.label then acc + 1 else acc) 0 t.samples

let num_negative t = size t - num_positive t

let shuffle rng t =
  let a = Array.copy t.samples in
  for i = Array.length a - 1 downto 1 do
    let j = Splitmix.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  { t with samples = a }

let split rng ~train_fraction t =
  if train_fraction <= 0.0 || train_fraction >= 1.0 then
    invalid_arg "Dataset.split: fraction must be in (0, 1)";
  let shuffled = shuffle rng t in
  let pos = Array.to_list shuffled.samples |> List.filter (fun s -> s.label) in
  let neg = Array.to_list shuffled.samples |> List.filter (fun s -> not s.label) in
  let take_fraction xs =
    let n = List.length xs in
    let k = max 1 (int_of_float (Float.round (train_fraction *. float_of_int n))) in
    let k = min k (n - 1) in
    let rec go i acc rest =
      if i = k then (List.rev acc, rest)
      else match rest with [] -> (List.rev acc, []) | x :: tl -> go (i + 1) (x :: acc) tl
    in
    go 0 [] xs
  in
  let pos_train, pos_test = take_fraction pos in
  let neg_train, neg_test = take_fraction neg in
  ( shuffle rng { t with samples = Array.of_list (pos_train @ neg_train) },
    shuffle rng { t with samples = Array.of_list (pos_test @ neg_test) } )

let balanced rng ~positives ~negatives ~nfeatures =
  let n = min (List.length positives) (List.length negatives) in
  let pick xs =
    let a = Array.of_list xs in
    for i = Array.length a - 1 downto 1 do
      let j = Splitmix.int rng (i + 1) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done;
    Array.to_list (Array.sub a 0 n)
  in
  let samples =
    List.map (fun f -> { features = f; label = true }) (pick positives)
    @ List.map (fun f -> { features = f; label = false }) (pick negatives)
  in
  shuffle rng (make ~nfeatures samples)

let with_class_ratio rng ~pos_weight ~neg_weight ~size:total t =
  if pos_weight <= 0 || neg_weight <= 0 then
    invalid_arg "Dataset.with_class_ratio: weights must be positive";
  let pos = Array.of_list (Array.to_list t.samples |> List.filter (fun s -> s.label)) in
  let neg = Array.of_list (Array.to_list t.samples |> List.filter (fun s -> not s.label)) in
  if Array.length pos = 0 || Array.length neg = 0 then
    invalid_arg "Dataset.with_class_ratio: needs both classes";
  let npos = total * pos_weight / (pos_weight + neg_weight) in
  let nneg = total - npos in
  let draw src k =
    List.init k (fun _ -> src.(Splitmix.int rng (Array.length src)))
  in
  shuffle rng { t with samples = Array.of_list (draw pos npos @ draw neg nneg) }

let subset t indices =
  { t with samples = Array.of_list (List.map (fun i -> t.samples.(i)) indices) }
