open Mcml_logic

type node = Leaf of bool | Split of { feature : int; if_false : node; if_true : node }
type t = { nfeatures : int; root : node }

type params = {
  max_depth : int option;
  min_samples_split : int;
  max_features : int option;
}

let default_params = { max_depth = None; min_samples_split = 2; max_features = None }

(* Gini impurity of a (weighted) label distribution. *)
let gini pos neg =
  let total = pos +. neg in
  if total = 0.0 then 0.0
  else begin
    let p = pos /. total and q = neg /. total in
    1.0 -. (p *. p) -. (q *. q)
  end

let train ?(params = default_params) ?weights ?rng (ds : Dataset.t) : t =
  let n = Dataset.size ds in
  let weights =
    match weights with
    | Some w ->
        if Array.length w <> n then invalid_arg "Decision_tree.train: weights length";
        w
    | None -> Array.make n 1.0
  in
  let feature_pool = Array.init ds.Dataset.nfeatures (fun i -> i) in
  let candidate_features () =
    match (params.max_features, rng) with
    | Some k, Some rng when k < Array.length feature_pool ->
        (* partial Fisher-Yates to draw k distinct features *)
        let a = Array.copy feature_pool in
        for i = 0 to k - 1 do
          let j = i + Splitmix.int rng (Array.length a - i) in
          let tmp = a.(i) in
          a.(i) <- a.(j);
          a.(j) <- tmp
        done;
        Array.to_list (Array.sub a 0 k)
    | _ -> Array.to_list feature_pool
  in
  let weight_split indices =
    List.fold_left
      (fun (pos, neg) i ->
        let s = ds.Dataset.samples.(i) in
        if s.Dataset.label then (pos +. weights.(i), neg) else (pos, neg +. weights.(i)))
      (0.0, 0.0) indices
  in
  let rec grow indices depth =
    match indices with
    | [] -> Leaf false
    | _ ->
        let pos, neg = weight_split indices in
        let impurity = gini pos neg in
        let stop =
          impurity = 0.0
          || List.length indices < params.min_samples_split
          || match params.max_depth with Some d -> depth >= d | None -> false
        in
        if stop then Leaf (pos > neg)
        else begin
          (* best split among candidate features by weighted Gini *)
          let best = ref None in
          List.iter
            (fun f ->
              let t_idx, f_idx =
                List.partition (fun i -> ds.Dataset.samples.(i).Dataset.features.(f)) indices
              in
              if t_idx <> [] && f_idx <> [] then begin
                let tp, tn = weight_split t_idx in
                let fp, fn = weight_split f_idx in
                let wt = tp +. tn and wf = fp +. fn in
                let score =
                  ((wt *. gini tp tn) +. (wf *. gini fp fn)) /. (wt +. wf)
                in
                match !best with
                | Some (s, _, _, _) when s <= score -> ()
                | _ -> best := Some (score, f, t_idx, f_idx)
              end)
            (candidate_features ());
          match !best with
          | None -> Leaf (pos > neg)
          | Some (_score, f, t_idx, f_idx) ->
              (* like scikit-learn's default CART, split as long as any
                 valid split exists (even with zero Gini improvement —
                 needed to fit parity-like targets); both sides are
                 non-empty so the recursion terminates *)
              Split
                {
                  feature = f;
                  if_true = grow t_idx (depth + 1);
                  if_false = grow f_idx (depth + 1);
                }
        end
  in
  let root = grow (List.init n (fun i -> i)) 0 in
  { nfeatures = ds.Dataset.nfeatures; root }

let predict t features =
  let rec go = function
    | Leaf b -> b
    | Split { feature; if_false; if_true } ->
        go (if features.(feature) then if_true else if_false)
  in
  go t.root

let paths t =
  let acc = ref [] in
  let rec go node conditions =
    match node with
    | Leaf b -> acc := (List.rev conditions, b) :: !acc
    | Split { feature; if_false; if_true } ->
        go if_true ((feature, true) :: conditions);
        go if_false ((feature, false) :: conditions)
  in
  go t.root [];
  List.rev !acc

let num_leaves t =
  let rec go = function
    | Leaf _ -> 1
    | Split { if_false; if_true; _ } -> go if_false + go if_true
  in
  go t.root

let depth t =
  let rec go = function
    | Leaf _ -> 0
    | Split { if_false; if_true; _ } -> 1 + max (go if_false) (go if_true)
  in
  go t.root

let eval_all t ~scope_bits oracle =
  if scope_bits > 24 then invalid_arg "Decision_tree.eval_all: too many bits";
  let c = ref Metrics.zero in
  let features = Array.make t.nfeatures false in
  for mask = 0 to (1 lsl scope_bits) - 1 do
    for b = 0 to scope_bits - 1 do
      features.(b) <- mask land (1 lsl b) <> 0
    done;
    let p = predict t features and a = oracle features in
    c :=
      Metrics.add !c
        (match (p, a) with
        | true, true -> { Metrics.zero with Metrics.tp = 1.0 }
        | true, false -> { Metrics.zero with Metrics.fp = 1.0 }
        | false, false -> { Metrics.zero with Metrics.tn = 1.0 }
        | false, true -> { Metrics.zero with Metrics.fn = 1.0 })
  done;
  !c

let pp fmt t =
  let rec go indent = function
    | Leaf b -> Format.fprintf fmt "%s=> %b@." indent b
    | Split { feature; if_false; if_true } ->
        Format.fprintf fmt "%sx%d?@." indent feature;
        go (indent ^ "  ") if_false;
        go (indent ^ "  ") if_true
  in
  go "" t.root
