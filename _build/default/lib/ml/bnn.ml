open Mcml_logic

type t = {
  w1 : int array array;
  b1 : int array;
  w2 : int array;
  b2 : int;
}

type params = { hidden : int; epochs : int; learning_rate : float }

let default_params = { hidden = 16; epochs = 30; learning_rate = 0.05 }

let sign_pm r = if r >= 0.0 then 1 else -1

(* executable semantics on the ±1 scale: input bit b |-> 2b - 1 *)
let neuron_sum (w : int array) b (x : bool array) =
  let acc = ref b in
  Array.iteri (fun i wi -> acc := !acc + (wi * if x.(i) then 1 else -1)) w;
  !acc

let hidden_unit t j x = neuron_sum t.w1.(j) t.b1.(j) x >= 0

let predict t x =
  let acc = ref t.b2 in
  Array.iteri
    (fun j vj -> acc := !acc + (vj * if hidden_unit t j x then 1 else -1))
    t.w2;
  !acc >= 0

let num_inputs t = Array.length t.w1.(0)
let num_hidden t = Array.length t.w1

let train ?(params = default_params) ~rng (ds : Dataset.t) =
  let n = Dataset.size ds in
  if n = 0 then invalid_arg "Bnn.train: empty dataset";
  let k = ds.Dataset.nfeatures and h = params.hidden in
  let uniform () = (2.0 *. Splitmix.float rng) -. 1.0 in
  (* real-valued latent parameters; forward passes binarize them *)
  let lw1 = Array.init h (fun _ -> Array.init k (fun _ -> uniform ())) in
  let lb1 = Array.make h 0.0 in
  let lw2 = Array.init h (fun _ -> uniform ()) in
  let lb2 = ref 0.0 in
  let bin v = if v >= 0.0 then 1.0 else -1.0 in
  let hidden_pre = Array.make h 0.0 in
  let hidden_act = Array.make h 0.0 in
  let sigmoid z = 1.0 /. (1.0 +. exp (-.z)) in
  for _epoch = 1 to params.epochs do
    for _step = 1 to n do
      let s = ds.Dataset.samples.(Splitmix.int rng n) in
      let x = s.Dataset.features in
      let y = if s.Dataset.label then 1.0 else 0.0 in
      (* forward with binarized weights *)
      for j = 0 to h - 1 do
        let acc = ref lb1.(j) in
        let row = lw1.(j) in
        for i = 0 to k - 1 do
          acc := !acc +. (bin row.(i) *. if x.(i) then 1.0 else -1.0)
        done;
        hidden_pre.(j) <- !acc;
        (* hard tanh as the straight-through surrogate activation *)
        hidden_act.(j) <- Float.max (-1.0) (Float.min 1.0 !acc)
      done;
      let out = ref !lb2 in
      for j = 0 to h - 1 do
        out := !out +. (bin lw2.(j) *. hidden_act.(j))
      done;
      let p = sigmoid !out in
      let dout = p -. y in
      let lr = params.learning_rate in
      lb2 := !lb2 -. (lr *. dout);
      for j = 0 to h - 1 do
        (* straight-through: gradient flows as if bin were identity *)
        lw2.(j) <- lw2.(j) -. (lr *. dout *. hidden_act.(j));
        lw2.(j) <- Float.max (-1.0) (Float.min 1.0 lw2.(j));
        let dh = dout *. bin lw2.(j) in
        (* clipped straight-through for the hidden sign activation *)
        if Float.abs hidden_pre.(j) <= 1.0 then begin
          lb1.(j) <- lb1.(j) -. (lr *. dh);
          let row = lw1.(j) in
          for i = 0 to k - 1 do
            row.(i) <- row.(i) -. (lr *. dh *. if x.(i) then 1.0 else -1.0);
            row.(i) <- Float.max (-1.0) (Float.min 1.0 row.(i))
          done
        end
      done
    done
  done;
  {
    w1 = Array.map (Array.map (fun v -> sign_pm v)) lw1;
    b1 = Array.map (fun v -> int_of_float (Float.round v)) lb1;
    w2 = Array.map (fun v -> sign_pm v) lw2;
    b2 = int_of_float (Float.round !lb2);
  }
