(** Brute-force projected model counting by exhaustive enumeration.

    Reference implementation used to validate the exact and approximate
    counters in tests; practical only up to roughly 20 projection
    variables. *)

open Mcml_logic

val count : Cnf.t -> Bignat.t
(** [count cnf] enumerates every assignment of the projection
    variables and counts those that extend to a model (a DPLL check on
    the residual clauses).

    @raise Invalid_argument when the projection set exceeds 24
    variables. *)
