(** Metamorphic validation of model counters.

    The MCML authors' companion work (TestMC, cited in the paper's
    §2/§5) tests model counters with differential and metamorphic
    relations.  This module implements the classic relations as
    checkable properties of a counting function, used by the test suite
    against both the exact and the brute-force backends and available
    to users who plug in their own counter:

    {ul
    {- Shannon expansion: [mc(F) = mc(F ∧ x) + mc(F ∧ ¬x)] for a
       projected variable [x];}
    {- variable renaming invariance: permuting variable names leaves
       the count unchanged;}
    {- disjoint composition: for variable-disjoint [F] and [G],
       [mc(F ∧ G) = mc(F) · mc(G)];}
    {- monotonicity: adding a clause never increases the count;}
    {- complement: [mc(F) + mc_P(¬F) = 2^|P|] when [F] ranges over
       exactly its projection set (checked via a fresh full-space
       formula pair).}} *)

open Mcml_logic

type counter = Cnf.t -> Bignat.t

val shannon : counter -> Cnf.t -> var:int -> bool
(** [shannon mc f ~var] checks the expansion on a projection variable.
    @raise Invalid_argument if [var] is not in the projection set. *)

val renaming_invariant : counter -> Cnf.t -> perm:int array -> bool
(** [perm] maps old variable [v] to [perm.(v)] (index 0 unused); must
    be a permutation of [1..nvars]. *)

val disjoint_product : counter -> Cnf.t -> Cnf.t -> bool
(** The two formulas' variable universes are made disjoint by shifting
    the second above the first. *)

val clause_monotone : counter -> Cnf.t -> extra:Lit.t array -> bool

val check_all : ?seed:int -> ?rounds:int -> counter -> Cnf.t -> bool
(** Run every applicable relation with randomly drawn parameters;
    [true] iff all hold. *)
