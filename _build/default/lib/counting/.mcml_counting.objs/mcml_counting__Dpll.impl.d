lib/counting/dpll.ml: Array List Lit Mcml_logic
