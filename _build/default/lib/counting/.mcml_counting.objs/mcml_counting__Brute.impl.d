lib/counting/brute.ml: Array Bignat Cnf Dpll Lit Mcml_logic
