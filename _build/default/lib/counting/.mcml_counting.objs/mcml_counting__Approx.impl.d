lib/counting/approx.ml: Array Bignat Cnf Hashtbl List Lit Mcml_logic Mcml_sat Solver Splitmix Unix Xor
