lib/counting/exact.ml: Array Bignat Buffer Cnf Hashtbl Int List Lit Mcml_logic Mcml_sat Option Unix Vec
