lib/counting/counter.mli: Approx Bignat Cnf Mcml_logic
