lib/counting/metamorphic.mli: Bignat Cnf Lit Mcml_logic
