lib/counting/exact.mli: Bignat Cnf Mcml_logic
