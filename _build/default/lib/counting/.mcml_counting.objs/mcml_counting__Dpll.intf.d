lib/counting/dpll.mli: Lit Mcml_logic
