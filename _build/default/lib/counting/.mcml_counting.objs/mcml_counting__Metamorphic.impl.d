lib/counting/metamorphic.ml: Array Bignat Cnf Lit Mcml_logic Option Splitmix
