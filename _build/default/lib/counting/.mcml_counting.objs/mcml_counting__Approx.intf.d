lib/counting/approx.mli: Bignat Cnf Mcml_logic
