lib/counting/brute.mli: Bignat Cnf Mcml_logic
