lib/counting/counter.ml: Approx Bignat Brute Cnf Exact Mcml_logic Unix
