open Mcml_logic

type counter = Cnf.t -> Bignat.t

let with_clause (cnf : Cnf.t) clause =
  Cnf.make ?projection:cnf.Cnf.projection ~nvars:cnf.Cnf.nvars
    (clause :: Array.to_list cnf.Cnf.clauses)

let shannon mc (cnf : Cnf.t) ~var =
  if not (Array.exists (( = ) var) (Cnf.projection_vars cnf)) then
    invalid_arg "Metamorphic.shannon: variable not in the projection set";
  let pos = with_clause cnf [| Lit.pos var |] in
  let neg = with_clause cnf [| Lit.neg_of_var var |] in
  Bignat.equal (mc cnf) (Bignat.add (mc pos) (mc neg))

let renaming_invariant mc (cnf : Cnf.t) ~perm =
  let n = cnf.Cnf.nvars in
  if Array.length perm <> n + 1 then
    invalid_arg "Metamorphic.renaming_invariant: perm length";
  let seen = Array.make (n + 1) false in
  for v = 1 to n do
    let w = perm.(v) in
    if w < 1 || w > n || seen.(w) then
      invalid_arg "Metamorphic.renaming_invariant: not a permutation";
    seen.(w) <- true
  done;
  let rename_lit l = Lit.make perm.(Lit.var l) (Lit.sign l) in
  let renamed =
    Cnf.make
      ?projection:(Option.map (Array.map (fun v -> perm.(v))) cnf.Cnf.projection)
      ~nvars:n
      (Array.to_list (Array.map (Array.map rename_lit) cnf.Cnf.clauses))
  in
  Bignat.equal (mc cnf) (mc renamed)

let disjoint_product mc (a : Cnf.t) (b : Cnf.t) =
  let shift = a.Cnf.nvars in
  let shift_lit l = Lit.make (Lit.var l + shift) (Lit.sign l) in
  let combined =
    Cnf.make
      ~projection:
        (Array.append
           (Cnf.projection_vars a)
           (Array.map (fun v -> v + shift) (Cnf.projection_vars b)))
      ~nvars:(a.Cnf.nvars + b.Cnf.nvars)
      (Array.to_list a.Cnf.clauses
      @ Array.to_list (Array.map (Array.map shift_lit) b.Cnf.clauses))
  in
  Bignat.equal (mc combined) (Bignat.mul (mc a) (mc b))

let clause_monotone mc (cnf : Cnf.t) ~extra =
  Bignat.compare (mc (with_clause cnf extra)) (mc cnf) <= 0

let check_all ?(seed = 1) ?(rounds = 4) mc (cnf : Cnf.t) =
  let rng = Splitmix.create seed in
  let proj = Cnf.projection_vars cnf in
  let n = cnf.Cnf.nvars in
  let ok = ref true in
  for _ = 1 to rounds do
    if Array.length proj > 0 then begin
      let var = proj.(Splitmix.int rng (Array.length proj)) in
      if not (shannon mc cnf ~var) then ok := false
    end;
    (* random permutation of 1..n *)
    let perm = Array.init (n + 1) (fun i -> i) in
    for v = n downto 2 do
      let w = 1 + Splitmix.int rng v in
      let tmp = perm.(v) in
      perm.(v) <- perm.(w);
      perm.(w) <- tmp
    done;
    if not (renaming_invariant mc cnf ~perm) then ok := false;
    if n >= 1 then begin
      let len = 1 + Splitmix.int rng (min 3 n) in
      let extra =
        Array.init len (fun _ -> Lit.make (1 + Splitmix.int rng n) (Splitmix.bool rng))
      in
      if not (clause_monotone mc cnf ~extra) then ok := false
    end
  done;
  !ok && disjoint_product mc cnf cnf
