(** A small DPLL satisfiability check on raw clause lists.

    Used by the exact counter to decide whether a residual component —
    one containing no projection variables — is satisfiable, without
    paying for a full CDCL solver instantiation.  Clauses are literal
    arrays; variables need not be contiguous. *)

open Mcml_logic

val sat : Lit.t array list -> bool
(** [sat clauses] decides satisfiability.  An empty clause yields
    [false]; an empty list yields [true]. *)

val restrict : Lit.t array list -> Lit.t -> Lit.t array list option
(** [restrict clauses l] simplifies under [l := true]; [None] signals a
    falsified clause. *)

val bcp : Lit.t array list -> Lit.t array list option
(** Exhaustive unit propagation; [None] signals a conflict. *)

val bcp_track : Lit.t array list -> (Lit.t array list * int list) option
(** Like {!bcp} but also returns the variables assigned by the
    propagation (needed by the projected counter to distinguish forced
    projection variables from freed ones). *)
