(** Unified front end over the model-counting backends.

    The paper's tooling treats the counter as a pluggable component
    (ApproxMC or ProjMC); this module provides the corresponding
    dispatch, timing, and timeout discipline (the paper uses a 5000 s
    timeout; ours defaults lower and is configurable). *)

open Mcml_logic

type backend =
  | Exact  (** the ProjMC stand-in: exact projected counting *)
  | Approx of Approx.config  (** the ApproxMC stand-in *)
  | Brute  (** exhaustive reference counter (tests, tiny instances) *)

type outcome = {
  count : Bignat.t;
  exact : bool;  (** whether the backend guarantees exactness *)
  time : float;  (** wall-clock seconds *)
}

val name : backend -> string

val count : ?budget:float -> backend:backend -> Cnf.t -> outcome option
(** [count ~backend cnf] runs the chosen counter; [None] on timeout
    ([budget] in seconds, default 5000 like the paper). *)
