type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }
let copy g = { state = g.state }

let next g =
  g.state <- Int64.add g.state golden;
  mix g.state

let int g bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  (* keep 62 bits so the value stays non-negative in OCaml's 63-bit int *)
  let r = Int64.to_int (Int64.shift_right_logical (next g) 2) in
  r mod bound

let bool g = Int64.logand (next g) 1L = 1L

let float g =
  let bits = Int64.to_float (Int64.shift_right_logical (next g) 11) in
  bits /. 9007199254740992.0 (* 2^53 *)

let split g = { state = mix (next g) }
