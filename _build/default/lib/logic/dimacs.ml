let print oc (cnf : Cnf.t) =
  (match cnf.Cnf.projection with
  | None -> ()
  | Some p ->
      (* chunk the sampling set to keep comment lines short *)
      let n = Array.length p in
      let i = ref 0 in
      while !i < n do
        let j = min n (!i + 20) in
        output_string oc "c ind";
        for k = !i to j - 1 do
          Printf.fprintf oc " %d" p.(k)
        done;
        output_string oc " 0\n";
        i := j
      done);
  Printf.fprintf oc "p cnf %d %d\n" cnf.Cnf.nvars (Cnf.num_clauses cnf);
  Array.iter
    (fun c ->
      Array.iter (fun l -> Printf.fprintf oc "%d " (Lit.to_dimacs l)) c;
      output_string oc "0\n")
    cnf.Cnf.clauses

let to_string cnf =
  let buf = Buffer.create 4096 in
  (match cnf.Cnf.projection with
  | None -> ()
  | Some p ->
      let n = Array.length p in
      let i = ref 0 in
      while !i < n do
        let j = min n (!i + 20) in
        Buffer.add_string buf "c ind";
        for k = !i to j - 1 do
          Buffer.add_string buf (" " ^ string_of_int p.(k))
        done;
        Buffer.add_string buf " 0\n";
        i := j
      done);
  Buffer.add_string buf (Printf.sprintf "p cnf %d %d\n" cnf.Cnf.nvars (Cnf.num_clauses cnf));
  Array.iter
    (fun c ->
      Array.iter (fun l -> Buffer.add_string buf (string_of_int (Lit.to_dimacs l) ^ " ")) c;
      Buffer.add_string buf "0\n")
    cnf.Cnf.clauses;
  Buffer.contents buf

let parse text =
  let nvars = ref 0 in
  let header_seen = ref false in
  let clauses = ref [] in
  let cur = ref [] in
  let projection = ref [] in
  let has_projection = ref false in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         let line = String.trim line in
         if line = "" then ()
         else if String.length line >= 5 && String.sub line 0 5 = "c ind" then begin
           has_projection := true;
           String.sub line 5 (String.length line - 5)
           |> String.split_on_char ' '
           |> List.iter (fun tok ->
                  match int_of_string_opt (String.trim tok) with
                  | Some v when v > 0 -> projection := v :: !projection
                  | _ -> ())
         end
         else if line.[0] = 'c' then ()
         else if line.[0] = 'p' then begin
           match String.split_on_char ' ' line |> List.filter (( <> ) "") with
           | [ "p"; "cnf"; nv; _nc ] ->
               header_seen := true;
               nvars := int_of_string nv
           | _ -> failwith "Dimacs.parse: malformed problem line"
         end
         else
           String.split_on_char ' ' line
           |> List.filter (( <> ) "")
           |> List.iter (fun tok ->
                  match int_of_string_opt tok with
                  | Some 0 ->
                      clauses := Array.of_list (List.rev !cur) :: !clauses;
                      cur := []
                  | Some n -> cur := Lit.of_dimacs n :: !cur
                  | None -> failwith ("Dimacs.parse: bad token " ^ tok)));
  if not !header_seen then failwith "Dimacs.parse: missing problem line";
  if !cur <> [] then clauses := Array.of_list (List.rev !cur) :: !clauses;
  let projection =
    if !has_projection then
      Some (List.sort_uniq Int.compare !projection |> Array.of_list)
    else None
  in
  Cnf.make ?projection ~nvars:!nvars (List.rev !clauses)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

let save path cnf =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> print oc cnf)
