(** Deterministic splittable pseudo-random numbers (SplitMix64).

    Every randomized component of the reproduction — negative-sample
    generation, dataset splits, the ML models' randomness, the
    approximate counter's hash functions — draws from seeded SplitMix64
    streams so that experiments are exactly repeatable. *)

type t

val create : int -> t
(** [create seed] builds a generator; equal seeds yield equal streams. *)

val copy : t -> t

val next : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  @raise Invalid_argument
    if [bound <= 0]. *)

val bool : t -> bool
val float : t -> float
(** Uniform in [\[0, 1)]. *)

val split : t -> t
(** Independent child stream (also advances the parent). *)
