type t = int

let make v sign =
  if v < 1 then invalid_arg "Lit.make: variable must be >= 1";
  (v lsl 1) lor (if sign then 0 else 1)

let pos v = make v true
let neg_of_var v = make v false
let var l = l lsr 1
let sign l = l land 1 = 0
let neg l = l lxor 1
let to_index l = l
let of_index i = i

let to_dimacs l = if sign l then var l else -var l

let of_dimacs n =
  if n = 0 then invalid_arg "Lit.of_dimacs: zero";
  if n > 0 then pos n else neg_of_var (-n)

let compare = Int.compare
let equal = Int.equal
let pp fmt l = Format.fprintf fmt "%d" (to_dimacs l)
