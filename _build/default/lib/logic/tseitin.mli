(** Tseitin transformation with bi-implicational definitions.

    Translates a hash-consed formula to CNF by introducing one fresh
    auxiliary variable per distinct [And]/[Or] subterm and asserting
    the {e equivalence} (not merely an implication) between the
    auxiliary and its definition.  Because every auxiliary is then
    functionally determined by the primary variables, the translation
    is {e model-count preserving} on the primary variables: the number
    of models of the CNF projected onto [1..nprimary] equals the number
    of satisfying valuations of the source formula.  This is the
    property MCML's counting-based metrics rely on. *)

val cnf_of : nprimary:int -> Formula.t -> Cnf.t
(** [cnf_of ~nprimary f] translates [f], whose variables must all lie
    in [1..nprimary], into a CNF whose projection set is
    [1..nprimary].  Auxiliary variables are allocated above
    [nprimary].

    Degenerate cases: a [True] root yields an empty clause set and a
    [False] root yields a single empty clause.

    @raise Invalid_argument if [f] mentions a variable above
    [nprimary]. *)
