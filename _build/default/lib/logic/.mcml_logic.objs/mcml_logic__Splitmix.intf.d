lib/logic/splitmix.mli:
