lib/logic/cnf.mli: Format Lit
