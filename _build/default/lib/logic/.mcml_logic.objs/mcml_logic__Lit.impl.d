lib/logic/lit.ml: Format Int
