lib/logic/formula.ml: Array Format Hashtbl Int List
