lib/logic/bignat.ml: Array Float Format List Printf Stdlib String
