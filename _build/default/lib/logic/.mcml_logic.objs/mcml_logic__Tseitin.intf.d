lib/logic/tseitin.mli: Cnf Formula
