lib/logic/splitmix.ml: Int64
