lib/logic/cnf.ml: Array Format Hashtbl Int List Lit Option Printf
