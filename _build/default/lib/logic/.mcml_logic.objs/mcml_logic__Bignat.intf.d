lib/logic/bignat.mli: Format
