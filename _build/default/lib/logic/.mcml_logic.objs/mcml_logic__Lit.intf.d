lib/logic/lit.mli: Format
