lib/logic/tseitin.ml: Array Cnf Formula Hashtbl List Lit
