lib/logic/dimacs.ml: Array Buffer Cnf Fun Int List Lit Printf String
