type t = {
  nvars : int;
  clauses : Lit.t array array;
  projection : int array option;
}

let clean_clause (c : Lit.t array) : Lit.t array option =
  let lits = Array.to_list c |> List.sort_uniq Lit.compare in
  let rec tautological = function
    | a :: (b :: _ as rest) ->
        (Lit.var a = Lit.var b && Lit.sign a <> Lit.sign b) || tautological rest
    | _ -> false
  in
  if tautological lits then None else Some (Array.of_list lits)

let make ?projection ~nvars clauses =
  let clauses = List.filter_map clean_clause clauses |> Array.of_list in
  Array.iter
    (fun c ->
      Array.iter
        (fun l ->
          if Lit.var l > nvars then
            invalid_arg
              (Printf.sprintf "Cnf.make: literal over var %d but nvars = %d" (Lit.var l) nvars))
        c)
    clauses;
  let projection =
    Option.map
      (fun p ->
        let p = Array.copy p in
        Array.sort Int.compare p;
        p)
      projection
  in
  { nvars; clauses; projection }

let num_clauses t = Array.length t.clauses
let num_literals t = Array.fold_left (fun acc c -> acc + Array.length c) 0 t.clauses

let projection_vars t =
  match t.projection with
  | Some p -> p
  | None -> Array.init t.nvars (fun i -> i + 1)

let eval t a =
  Array.for_all
    (fun c -> Array.exists (fun l -> a.(Lit.var l) = Lit.sign l) c)
    t.clauses

let conjoin ~nshared a b =
  if nshared > a.nvars || nshared > b.nvars then
    invalid_arg "Cnf.conjoin: nshared exceeds a side's variable count";
  let offset = a.nvars - nshared in
  let rename_var v = if v <= nshared then v else v + offset in
  let rename_lit l = Lit.make (rename_var (Lit.var l)) (Lit.sign l) in
  let b_clauses = Array.map (Array.map rename_lit) b.clauses in
  let nvars = a.nvars + (b.nvars - nshared) in
  let projection =
    match (a.projection, b.projection) with
    | None, _ | _, None -> None
    | Some pa, Some pb ->
        let s = Hashtbl.create 64 in
        Array.iter (fun v -> Hashtbl.replace s v ()) pa;
        Array.iter (fun v -> Hashtbl.replace s (rename_var v) ()) pb;
        let p = Hashtbl.fold (fun v () acc -> v :: acc) s [] |> Array.of_list in
        Array.sort Int.compare p;
        Some p
  in
  { nvars; clauses = Array.append a.clauses b_clauses; projection }

let pp_stats fmt t =
  Format.fprintf fmt "vars=%d clauses=%d lits=%d proj=%d" t.nvars (num_clauses t)
    (num_literals t)
    (Array.length (projection_vars t))
